#!/usr/bin/env python
"""Validate pinned adversary regression episodes (CI lint step).

The ``adversary-regression`` CI job replays every episode pinned under
``benchmarks/adversary/`` and fails on digest drift — but a replay can
only catch what *parses*.  This check catches the cheaper mistakes at
lint time, without running the simulator:

* every ``*.json`` episode artifact parses and carries a ``spec`` with a
  fault plan whose kinds exist in the fault vocabulary;
* the spec names a registered protocol (the RBFT family the episode
  runner accepts);
* the spec stays below the redundant-instance batching threshold
  (``RBFTConfig.pacing_f_threshold``): replay digests hash the exact
  per-message schedule, so a pinned episode must never run on the
  coalesced path;
* the artifact carries a non-empty SHA-256 invariant digest (otherwise
  ``check --replay`` would "match" against nothing);
* ``LEADERBOARD.json``, when present, references only episode artifacts
  that actually exist next to it.

Usage: ``python tools/check_episodes.py [DIR ...]`` (default:
``benchmarks/adversary``).  Exits non-zero listing every problem.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

DEFAULT_DIR = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "adversary"
)


def _is_sha256(value) -> bool:
    return (
        isinstance(value, str)
        and len(value) == 64
        and all(c in "0123456789abcdef" for c in value)
    )


def check_episode(path: str, fault_kinds, protocols) -> list:
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            record = json.load(fileobj)
    except (OSError, ValueError) as exc:
        return ["%s: does not parse: %s" % (path, exc)]
    spec = record.get("spec")
    if not isinstance(spec, dict):
        return ["%s: no episode spec" % path]
    protocol = spec.get("protocol", "rbft")
    if protocol not in protocols:
        problems.append(
            "%s: unknown protocol %r (registered: %s)"
            % (path, protocol, ", ".join(sorted(protocols)))
        )
    else:
        from repro.core import RBFTConfig

        threshold = RBFTConfig.pacing_f_threshold
        f = spec.get("f", 1)
        if isinstance(f, int) and f > threshold:
            problems.append(
                "%s: f=%d crosses the instance-batching threshold (f > %d);"
                " pinned replays must stay on the exact path"
                % (path, f, threshold)
            )
    for fault in spec.get("plan", ()):
        kind = fault.get("kind") if isinstance(fault, dict) else None
        if kind not in fault_kinds:
            problems.append("%s: unknown fault kind %r" % (path, kind))
    if not _is_sha256(record.get("digest")):
        problems.append(
            "%s: missing or malformed invariant digest" % path
        )
    return problems


def check_leaderboard(path: str) -> list:
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            record = json.load(fileobj)
    except (OSError, ValueError) as exc:
        return ["%s: does not parse: %s" % (path, exc)]
    directory = os.path.dirname(path)
    referenced = [record.get("baseline", {}).get("artifact")]
    for entry in record.get("entries", ()):
        referenced.append(entry.get("artifact"))
    for entry in record.get("scripted", {}).values():
        referenced.append(entry.get("artifact"))
    for artifact in referenced:
        if artifact and not os.path.exists(os.path.join(directory, artifact)):
            problems.append(
                "%s: references missing artifact %r" % (path, artifact)
            )
    return problems


def check_directory(directory: str, fault_kinds, protocols) -> list:
    problems = []
    episodes = 0
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        if name == "LEADERBOARD.json":
            problems.extend(check_leaderboard(path))
        else:
            episodes += 1
            problems.extend(check_episode(path, fault_kinds, protocols))
    if not episodes:
        problems.append("%s: no pinned episode artifacts" % directory)
    return problems


def main(argv) -> int:
    from repro.protocols import registry
    from repro.verify.episode import RBFT_FAMILY
    from repro.verify.vocabulary import FAULT_KINDS

    protocols = frozenset(registry.names()) & frozenset(RBFT_FAMILY)
    directories = argv[1:] or [DEFAULT_DIR]
    problems = []
    for directory in directories:
        if not os.path.isdir(directory):
            problems.append("%s: not a directory" % directory)
            continue
        problems.extend(
            check_directory(directory, frozenset(FAULT_KINDS), protocols)
        )
    for problem in problems:
        print("check_episodes: %s" % problem, file=sys.stderr)
    if problems:
        return 1
    print("check_episodes: %s ok" % ", ".join(directories))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
