#!/usr/bin/env python
"""Forbid direct ``build_*`` / profile-constructor imports in the library.

Two registries own their respective factories, and library code must
resolve through them rather than hard-coding a concrete factory:

* The protocol registry (``repro.protocols.registry``) is the one place
  that maps variant names to deployment builders; ``Scenario``/``run``
  and ``make_deployment`` resolve through it.  Library code importing
  ``build_rbft`` and friends directly bypasses that indirection, and the
  variant it hard-codes silently falls out of sync with the registry.
* The workload registry (``repro.clients.registry``) is the one place
  that maps pack names to rate-profile constructors;
  ``Scenario(workload=...)`` and ``build_profile`` resolve through it.
  Importing ``static_profile`` and friends directly pins a traffic shape
  the registry no longer controls.

Allowed for builders:

* ``repro/experiments/deployments.py`` — defines the builders;
* ``repro/protocols/registry.py`` — maps names to them;
* ``repro/experiments/__init__.py`` — re-exports them for downstream
  users (the builders stay public; only *internal* use is restricted).

Allowed for profile constructors:

* ``repro/clients/workloads.py`` — defines them;
* ``repro/clients/registry.py`` — maps pack names to them;
* ``repro/clients/__init__.py`` — re-exports them.

Everything else under ``src/repro`` must go through the registries.
Exits non-zero listing offending ``file:line`` locations, so CI can run
it as a lint step.  Tests, benchmarks and examples are exempt: they may
pin a concrete factory on purpose.
"""

from __future__ import annotations

import ast
import os
import sys

BUILDERS = frozenset(
    ["build_rbft", "build_aardvark", "build_spinning", "build_prime", "build_pbft"]
)

ALLOWED = frozenset(
    [
        os.path.join("repro", "experiments", "deployments.py"),
        os.path.join("repro", "experiments", "__init__.py"),
        os.path.join("repro", "protocols", "registry.py"),
    ]
)

PROFILES = frozenset(
    [
        "static_profile",
        "dynamic_profile",
        "diurnal_profile",
        "flash_crowd_profile",
        "churn_profile",
        "heavy_mix_profile",
    ]
)

PROFILES_ALLOWED = frozenset(
    [
        os.path.join("repro", "clients", "workloads.py"),
        os.path.join("repro", "clients", "registry.py"),
        os.path.join("repro", "clients", "__init__.py"),
    ]
)


def _names_for(rel: str):
    """The forbidden-name set that applies to one file."""
    names = set()
    if rel not in ALLOWED:
        names |= BUILDERS
    if rel not in PROFILES_ALLOWED:
        names |= PROFILES
    return names


def violations_in(path: str, rel: str):
    """Yield (line, name) for each direct factory import in one file."""
    names = _names_for(rel)
    if not names:
        return
    with open(path, "r", encoding="utf-8") as fileobj:
        try:
            tree = ast.parse(fileobj.read(), filename=rel)
        except SyntaxError as exc:
            yield (exc.lineno or 0, "syntax error: %s" % exc.msg)
            return
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in names:
                    yield (node.lineno, alias.name)
        elif isinstance(node, ast.Attribute) and node.attr in names:
            yield (node.lineno, node.attr)


def main(argv) -> int:
    root = argv[1] if len(argv) > 1 else "src"
    found = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "repro")):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            for line, name in violations_in(path, rel):
                found.append("%s:%d: direct use of %s" % (rel, line, name))
    if found:
        print("lint_builders: library code must resolve deployments via")
        print("repro.protocols.registry (or make_deployment) and rate")
        print("profiles via repro.clients.registry (build_profile), not")
        print("concrete factories:")
        for entry in found:
            print("  " + entry)
        return 1
    print("lint_builders: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
